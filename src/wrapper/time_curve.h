// The core test-time-vs-TAM-width curve T(w), w = 1..w_max.
//
// T(w) is a non-increasing staircase: it only drops at core-specific
// thresholds (paper Fig. 1). TimeCurve caches the full curve so Pareto
// extraction, preferred-width selection, and the scheduler can query it in
// O(1) per width.
#pragma once

#include <vector>

#include "soc/core_spec.h"
#include "util/interval.h"

namespace soctest {

class TimeCurve {
 public:
  TimeCurve() = default;

  // Computes T(w) for w in [1, w_max] by running DesignWrapper at each width.
  TimeCurve(const CoreSpec& core, int w_max);

  int w_max() const { return static_cast<int>(times_.size()); }
  bool empty() const { return times_.empty(); }

  // T(w); w is clamped into [1, w_max].
  Time TimeAt(int w) const;

  // Smallest width whose time is <= the time at w_max (i.e. the width beyond
  // which extra wires buy nothing). This is the highest Pareto width.
  int SaturationWidth() const;

  const std::vector<Time>& times() const { return times_; }

 private:
  std::vector<Time> times_;  // times_[w-1] = T(w)
};

}  // namespace soctest
