#include "wrapper/wrapper_design.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

namespace soctest {

Time WrapperConfig::TestTime(std::int64_t patterns) const {
  const std::int64_t s_max = std::max(scan_in_length, scan_out_length);
  const std::int64_t s_min = std::min(scan_in_length, scan_out_length);
  return (1 + s_max) * patterns + s_min;
}

namespace {

// Distributes `cells` unit-length wrapper cells over the chains so that the
// maximum of (base_length(j) + cells(j)) is minimized. Greedy with a min-heap
// on the running length is exact for unit items.
void DistributeCells(std::vector<WrapperChain>& chains, int cells,
                     bool input_side) {
  if (cells <= 0 || chains.empty()) return;
  using Entry = std::pair<std::int64_t, std::size_t>;  // (length, chain index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t j = 0; j < chains.size(); ++j) {
    const std::int64_t len =
        input_side ? chains[j].ScanInLength() : chains[j].ScanOutLength();
    heap.emplace(len, j);
  }
  for (int c = 0; c < cells; ++c) {
    auto [len, j] = heap.top();
    heap.pop();
    if (input_side) {
      ++chains[j].input_cells;
    } else {
      ++chains[j].output_cells;
    }
    heap.emplace(len + 1, j);
  }
}

}  // namespace

WrapperConfig DesignWrapper(const CoreSpec& core, int tam_width) {
  assert(tam_width >= 1);
  WrapperConfig config;
  config.tam_width = tam_width;

  // Never build more chains than there is content to put on them.
  const int max_useful = core.MaxUsefulWidth();
  const int w = std::max(1, std::min(tam_width, max_useful));
  config.chains.resize(static_cast<std::size_t>(w));

  // Step 1 (BFD over internal scan chains): sort decreasing, place each chain
  // on the wrapper chain with the smallest current scan length.
  std::vector<int> order(core.scan_chain_lengths.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&core](int a, int b) {
    const int la = core.scan_chain_lengths[static_cast<std::size_t>(a)];
    const int lb = core.scan_chain_lengths[static_cast<std::size_t>(b)];
    return la > lb || (la == lb && a < b);
  });
  using Entry = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t j = 0; j < config.chains.size(); ++j) heap.emplace(0, j);
  for (int idx : order) {
    auto [len, j] = heap.top();
    heap.pop();
    auto& chain = config.chains[j];
    chain.scan_cells += core.scan_chain_lengths[static_cast<std::size_t>(idx)];
    chain.internal_chains.push_back(idx);
    heap.emplace(chain.scan_cells, j);
  }

  // Step 2: thread input wrapper cells (inputs + bidirs) onto the chains to
  // balance scan-in lengths; likewise output cells for scan-out lengths.
  DistributeCells(config.chains, core.ScanInIoCells(), /*input_side=*/true);
  DistributeCells(config.chains, core.ScanOutIoCells(), /*input_side=*/false);

  // Drop chains that ended up completely empty (possible when w exceeds the
  // number of placeable items); they consume no TAM wires.
  config.chains.erase(
      std::remove_if(config.chains.begin(), config.chains.end(),
                     [](const WrapperChain& c) {
                       return c.scan_cells == 0 && c.input_cells == 0 &&
                              c.output_cells == 0;
                     }),
      config.chains.end());
  config.used_width = static_cast<int>(config.chains.size());

  for (const auto& chain : config.chains) {
    config.scan_in_length = std::max(config.scan_in_length, chain.ScanInLength());
    config.scan_out_length =
        std::max(config.scan_out_length, chain.ScanOutLength());
  }
  return config;
}

Time WrapperTestTime(const CoreSpec& core, int tam_width) {
  return DesignWrapper(core, tam_width).TestTime(core.num_patterns);
}

}  // namespace soctest
