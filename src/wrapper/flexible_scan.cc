#include "wrapper/flexible_scan.h"

#include <algorithm>
#include <cassert>

#include "wrapper/wrapper_design.h"

namespace soctest {

Time FlexibleScanTestTime(const CoreSpec& core, int tam_width) {
  assert(tam_width >= 1);
  const std::int64_t ff = core.TotalScanCells();
  const int in_cells = core.ScanInIoCells();
  const int out_cells = core.ScanOutIoCells();

  // Useful width: beyond one wrapper chain per cell nothing improves.
  const auto max_cells =
      std::max<std::int64_t>({ff + in_cells, ff + out_cells, 1});
  const int w = static_cast<int>(
      std::min<std::int64_t>(tam_width, max_cells));

  // With freely re-stitchable chains the scan-in side can balance scan cells
  // and input cells jointly, so the longest scan-in chain is exactly
  // ceil((FF + inputs) / w); likewise for scan-out. Any fixed-chain wrapper
  // satisfies max_j(scan_j + in_j) >= ceil((FF + in) / w), making this a
  // true lower bound.
  const std::int64_t si = (ff + in_cells + w - 1) / w;
  const std::int64_t so = (ff + out_cells + w - 1) / w;
  return (1 + std::max(si, so)) * core.num_patterns + std::min(si, so);
}

std::vector<Time> FlexibleScanCurve(const CoreSpec& core, int w_max) {
  assert(w_max >= 1);
  std::vector<Time> curve;
  curve.reserve(static_cast<std::size_t>(w_max));
  Time best = 0;
  for (int w = 1; w <= w_max; ++w) {
    const Time t = FlexibleScanTestTime(core, w);
    best = curve.empty() ? t : std::min(best, t);
    curve.push_back(best);  // enforce the non-increasing convention
  }
  return curve;
}

double FixedChainPenalty(const CoreSpec& core, int w_max) {
  const TimeCurve fixed(core, w_max);
  const auto flexible = FlexibleScanCurve(core, w_max);
  double worst = 1.0;
  for (int w = 1; w <= w_max; ++w) {
    const auto flex_t =
        static_cast<double>(flexible[static_cast<std::size_t>(w - 1)]);
    if (flex_t <= 0.0) continue;
    worst = std::max(worst, static_cast<double>(fixed.TimeAt(w)) / flex_t);
  }
  return worst;
}

}  // namespace soctest
