#include "wrapper/time_curve.h"

#include <algorithm>
#include <cassert>

#include "wrapper/wrapper_design.h"

namespace soctest {

TimeCurve::TimeCurve(const CoreSpec& core, int w_max) {
  assert(w_max >= 1);
  times_.reserve(static_cast<std::size_t>(w_max));
  flushes_.reserve(static_cast<std::size_t>(w_max));
  Time best = 0;
  Time flush = 0;
  const int useful = core.MaxUsefulWidth();
  for (int w = 1; w <= w_max; ++w) {
    if (w <= useful || times_.empty()) {
      const WrapperConfig config = DesignWrapper(core, w);
      best = config.TestTime(core.num_patterns);
      flush = config.scan_in_length + config.scan_out_length;
    }
    // Defensive monotonicity: BFD is a heuristic, so a larger width could in
    // principle produce a (slightly) worse partition. The deliverable curve
    // must be non-increasing — a core may always ignore extra wires — so we
    // clamp to the best time seen so far.
    if (!times_.empty()) best = std::min(best, times_.back());
    times_.push_back(best);
    flushes_.push_back(flush);
  }
}

Time TimeCurve::TimeAt(int w) const {
  assert(!times_.empty());
  w = std::clamp(w, 1, w_max());
  return times_[static_cast<std::size_t>(w - 1)];
}

Time TimeCurve::FlushAt(int w) const {
  assert(!flushes_.empty());
  w = std::clamp(w, 1, w_max());
  return flushes_[static_cast<std::size_t>(w - 1)];
}

int TimeCurve::SaturationWidth() const {
  assert(!times_.empty());
  const Time floor_time = times_.back();
  for (int w = 1; w <= w_max(); ++w) {
    if (TimeAt(w) == floor_time) return w;
  }
  return w_max();
}

}  // namespace soctest
