// Rectangle representation of core tests (paper Section 3).
//
// For each core, the candidate rectangles are its Pareto-optimal
// (width = height, test time = width) points, clipped to the SOC TAM width.
// The scheduler selects one rectangle per core and packs them.
#pragma once

#include <vector>

#include "soc/soc.h"
#include "wrapper/pareto.h"
#include "wrapper/time_curve.h"

namespace soctest {

// Candidate rectangle set for one core.
class RectangleSet {
 public:
  RectangleSet() = default;

  // w_limit clips candidate widths to the SOC TAM width; w_max bounds the
  // per-core curve evaluation (the paper uses 64).
  RectangleSet(const CoreSpec& core, int w_max, int w_limit);

  // Builds the set from an already-computed curve, clipping to w_limit. This
  // skips the expensive wrapper re-design entirely: `curve` was evaluated up
  // to its own w_max, which bounds the candidate widths exactly as the other
  // constructor's w_max does. CompiledProblem uses this to derive per-TAM-
  // width rectangle sets from curves compiled once per core.
  RectangleSet(CoreId core_id, TimeCurve curve, int w_limit);

  // Fast clipping path: the curve AND its Pareto points were both computed
  // already (CompiledCore stores them), so clipping to w_limit is a plain
  // prefix copy of `pareto` — one branch-light loop, no Pareto re-extraction
  // over the curve. Exact by construction: whether width w is Pareto-optimal
  // depends only on T(w) vs T(w-1), so clipping the domain to [1, w_limit]
  // clips the Pareto set to the same prefix. `pareto` must be the Pareto
  // points of `curve` (sorted by increasing width).
  RectangleSet(CoreId core_id, TimeCurve curve,
               const std::vector<ParetoPoint>& pareto, int w_limit);

  CoreId core_id() const { return core_id_; }
  const TimeCurve& curve() const { return curve_; }
  const std::vector<ParetoPoint>& pareto() const { return pareto_; }

  // Test time at a given assigned width (widths snap down to Pareto grid;
  // w clamped to [1, w_limit]).
  Time TimeAtWidth(int w) const;

  // Largest Pareto width <= w (>= 1) — the width actually worth wiring.
  int SnapWidth(int w) const;

  // Highest candidate width (top Pareto width, clipped).
  int MaxWidth() const;

  // Minimum achievable test time given the clip (= time at MaxWidth()).
  Time MinTime() const;

  // Minimal packing area over candidates: min_w (w * T(w)). This is the
  // core's contribution to the area lower bound.
  std::int64_t MinArea() const;

  // MinTime/MinArea restricted to candidates of width <= w (w is clamped
  // into [1, w_limit] exactly like SnapWidth). These keep derived clips —
  // e.g. CompiledProblem::Bounds evaluating a narrower TAM width — on the
  // same clipping rule as the rectangles the scheduler packs.
  Time MinTimeAtMost(int w) const;
  std::int64_t MinAreaAtMost(int w) const;

 private:
  CoreId core_id_ = kNoCore;
  int w_limit_ = 0;
  TimeCurve curve_;
  std::vector<ParetoPoint> pareto_;  // clipped to w_limit
};

// Builds rectangle sets for all cores of an SOC.
std::vector<RectangleSet> BuildRectangleSets(const Soc& soc, int w_max,
                                             int w_limit);

}  // namespace soctest
