// Pareto-optimal (width, time) points of a core's time curve and the
// preferred-width selection heuristic (paper Section 4, Procedure Initialize).
#pragma once

#include <vector>

#include "util/interval.h"
#include "wrapper/time_curve.h"

namespace soctest {

struct ParetoPoint {
  int width = 0;
  Time time = 0;

  friend bool operator==(const ParetoPoint&, const ParetoPoint&) = default;
};

// Extracts the Pareto-optimal widths of the curve: width w is Pareto-optimal
// iff T(w) < T(w-1) (or w == 1). Result is sorted by increasing width,
// strictly decreasing time.
std::vector<ParetoPoint> ParetoPoints(const TimeCurve& curve);

// Parameters of the preferred-width heuristic.
struct PreferredWidthParams {
  // Percent slack S: the preferred width is the smallest w such that
  // T(w) <= (1 + s_percent/100) * T(w_max). Paper range: 1..10.
  double s_percent = 5.0;
  // Bump window delta: if the highest Pareto width w* satisfies
  // w* - preferred <= delta, use w* instead (helps bottleneck cores).
  // Paper range: 0..4.
  int delta = 1;
};

// Computes the preferred TAM width for a core given its curve. The result is
// always one of the curve's Pareto widths.
int PreferredWidth(const TimeCurve& curve, const PreferredWidthParams& params);

// Largest Pareto-optimal width that is <= w (>= 1); assigning more than this
// up to w wastes wires without reducing time.
int LargestParetoWidthAtMost(const std::vector<ParetoPoint>& pareto, int w);

}  // namespace soctest
