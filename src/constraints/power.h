// Test power model (paper Sections 4 and 6).
//
// The paper assigns each core a hypothetical power value proportional to the
// number of test-data bits per test pattern, and schedules under a budget
// Pmax that the sum of concurrently-running tests' power must not exceed.
#pragma once

#include <cstdint>
#include <vector>

#include "soc/soc.h"

namespace soctest {

class PowerModel {
 public:
  // No budget: Pmax treated as unlimited.
  PowerModel() = default;

  PowerModel(std::vector<std::int64_t> core_power, std::int64_t pmax)
      : core_power_(std::move(core_power)), pmax_(pmax) {}

  // Builds the paper's model: power(i) = BitsPerPattern(i) for cores whose
  // spec carries no explicit power value (otherwise the explicit value is
  // kept), and Pmax = ceil(budget_factor * max_i power(i)).
  //
  // budget_factor = 1.0 forces fully serial testing of the peak-power core
  // with anything of equal power; the paper's experiments use a budget that
  // visibly lengthens the schedule, which factor 1.5 reproduces.
  static PowerModel FromSoc(const Soc& soc, double budget_factor = 1.5);

  bool unlimited() const { return pmax_ < 0; }
  std::int64_t pmax() const { return pmax_; }
  void set_pmax(std::int64_t pmax) { pmax_ = pmax; }

  std::int64_t PowerOf(CoreId core) const {
    if (core < 0 || static_cast<std::size_t>(core) >= core_power_.size()) return 0;
    return core_power_[static_cast<std::size_t>(core)];
  }

  std::int64_t MaxCorePower() const;

  // True iff the given additional load fits under the budget.
  bool Fits(std::int64_t current_load, std::int64_t additional) const {
    return unlimited() || current_load + additional <= pmax_;
  }

  const std::vector<std::int64_t>& core_power() const { return core_power_; }

 private:
  std::vector<std::int64_t> core_power_;
  std::int64_t pmax_ = -1;  // negative = unlimited
};

}  // namespace soctest
