// Test power model (paper Sections 4 and 6), extended with time-varying
// budgets.
//
// The paper assigns each core a hypothetical power value proportional to the
// number of test-data bits per test pattern, and schedules under a budget
// Pmax that the sum of concurrently-running tests' power must not exceed.
// Real test floors throttle: thermal windows and shared-ATE power rails make
// the budget a function of time. PowerBudget models that as a
// piecewise-constant timeline of (start_cycle, pmax) segments; the paper's
// static cap is its one-segment special case.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "soc/soc.h"
#include "util/interval.h"

namespace soctest {

// A piecewise-constant power-budget timeline. Segment i caps instantaneous
// power at `pmax` over [start, next segment's start); the final segment
// extends to infinity. Invariants (enforced by FromSegments): the first
// segment starts at cycle 0, starts are strictly increasing, and every
// segment's pmax is positive. An empty timeline means "unlimited".
class PowerBudget {
 public:
  struct Segment {
    Time start = 0;
    std::int64_t pmax = 0;

    friend bool operator==(const Segment&, const Segment&) = default;
  };

  // Unlimited: no cap at any time.
  PowerBudget() = default;

  // Single-segment (static) budget. A negative pmax means unlimited,
  // mirroring the historical PowerModel encoding.
  static PowerBudget Constant(std::int64_t pmax);

  // Validates and adopts a timeline. Returns nullopt (and sets *error when
  // non-null) unless the segments start at 0, strictly increase, and carry
  // positive caps. An empty vector yields the unlimited budget.
  static std::optional<PowerBudget> FromSegments(std::vector<Segment> segments,
                                                 std::string* error = nullptr);

  bool unlimited() const { return segments_.empty(); }

  // True iff the cap actually changes over time (≥ 2 segments). Single
  // segment and unlimited timelines have no change-points, which is what the
  // scheduler's bit-identity contract keys off.
  bool has_changes() const { return segments_.size() > 1; }

  // The cap in force at cycle t (t < 0 is treated as t = 0). Unlimited
  // budgets report -1, mirroring PowerModel::pmax().
  std::int64_t BudgetAt(Time t) const;

  // The first change-point strictly after t, or nullopt when the budget is
  // constant from t on.
  std::optional<Time> NextChangeAfter(Time t) const;

  // The minimum cap over [begin, end). An empty window answers BudgetAt(begin)
  // so callers need not special-case zero-length holds. Unlimited → -1.
  std::int64_t MinOver(Time begin, Time end) const;

  // The largest cap any segment ever grants (-1 when unlimited). A core whose
  // power exceeds this can never be scheduled.
  std::int64_t MaxBudget() const;

  const std::vector<Segment>& segments() const { return segments_; }

  friend bool operator==(const PowerBudget&, const PowerBudget&) = default;

 private:
  explicit PowerBudget(std::vector<Segment> segments)
      : segments_(std::move(segments)) {}

  std::vector<Segment> segments_;  // empty = unlimited
};

// Renders a timeline as "start:pmax[,start:pmax...]" — the textual form used
// by the request protocol's budget= flag and the CLI's --budget option.
// Unlimited renders as the empty string.
std::string FormatBudgetTimeline(const PowerBudget& budget);

// Parses the FormatBudgetTimeline form, applying the same validation as
// PowerBudget::FromSegments. Round-trips exactly: Parse(Format(b)) == b for
// every valid non-empty timeline. Returns nullopt and sets *error (when
// non-null) on malformed input.
std::optional<PowerBudget> ParseBudgetTimeline(const std::string& text,
                                               std::string* error = nullptr);

class PowerModel {
 public:
  // No budget: Pmax treated as unlimited.
  PowerModel() = default;

  // Static cap (negative = unlimited) — the paper's original model.
  PowerModel(std::vector<std::int64_t> core_power, std::int64_t pmax)
      : core_power_(std::move(core_power)),
        budget_(PowerBudget::Constant(pmax)) {}

  PowerModel(std::vector<std::int64_t> core_power, PowerBudget budget)
      : core_power_(std::move(core_power)), budget_(std::move(budget)) {}

  // Builds the paper's model: power(i) = BitsPerPattern(i) for cores whose
  // spec carries no explicit power value (otherwise the explicit value is
  // kept), and Pmax = ceil(budget_factor * max_i power(i)).
  //
  // budget_factor = 1.0 forces fully serial testing of the peak-power core
  // with anything of equal power; the paper's experiments use a budget that
  // visibly lengthens the schedule, which factor 1.5 reproduces.
  static PowerModel FromSoc(const Soc& soc, double budget_factor = 1.5);

  bool unlimited() const { return budget_.unlimited(); }

  // The cap of the timeline's first segment (-1 when unlimited). For a
  // single-segment budget this is the whole story; a time-varying budget's
  // callers should consult budget() instead.
  std::int64_t pmax() const { return budget_.BudgetAt(0); }

  // Replaces the timeline with a static cap (negative = unlimited).
  void set_pmax(std::int64_t pmax) { budget_ = PowerBudget::Constant(pmax); }

  const PowerBudget& budget() const { return budget_; }
  void set_budget(PowerBudget budget) { budget_ = std::move(budget); }

  // Per-core test power. Contract: a model with no per-core table (the
  // default-constructed "unlimited" model) reports 0 for every core — such a
  // model imposes no constraint, so no caller may depend on its values. A
  // model WITH a table aborts on a negative or out-of-range id: silently
  // answering 0 there once masked indexing bugs as free power.
  std::int64_t PowerOf(CoreId core) const {
    if (core_power_.empty()) return 0;
    if (core < 0 || static_cast<std::size_t>(core) >= core_power_.size()) {
      DieBadCoreId(core);
    }
    return core_power_[static_cast<std::size_t>(core)];
  }

  std::int64_t MaxCorePower() const;

  // True iff the given additional load fits under the first segment's cap.
  // Time-unaware (legacy): identical to FitsAt(..., 0, 0).
  bool Fits(std::int64_t current_load, std::int64_t additional) const {
    return unlimited() || current_load + additional <= pmax();
  }

  // True iff the additional load fits under the budget at cycle `now` and —
  // when hold > 0 — keeps fitting over the whole window [now, now + hold).
  // Admissions that cannot later be preempted pass their full remaining test
  // time as `hold` so a future budget drop can never catch them running.
  bool FitsAt(std::int64_t current_load, std::int64_t additional, Time now,
              Time hold) const {
    if (unlimited()) return true;
    if (!budget_.has_changes()) return current_load + additional <= pmax();
    const std::int64_t cap =
        hold > 0 ? budget_.MinOver(now, now + hold) : budget_.BudgetAt(now);
    return current_load + additional <= cap;
  }

  const std::vector<std::int64_t>& core_power() const { return core_power_; }

 private:
  [[noreturn]] void DieBadCoreId(CoreId core) const;

  std::vector<std::int64_t> core_power_;
  PowerBudget budget_;  // default-constructed = unlimited
};

// Returns `base` with its timeline replaced by `budget`. When `base` carries
// no per-core power table (the SOC declared no powermax), per-core power is
// derived the same way TestProblem::FromParsed does: the spec's explicit
// power value, else BitsPerPattern. This is how budget overrides (requests,
// CLI) attach a timeline to a problem whose SOC text never mentioned power.
PowerModel WithBudget(const Soc& soc, const PowerModel& base,
                      PowerBudget budget);

}  // namespace soctest
