#include "constraints/precedence.h"

#include <algorithm>
#include <queue>

namespace soctest {

PrecedenceGraph::PrecedenceGraph(int num_cores)
    : succ_(static_cast<std::size_t>(std::max(0, num_cores))),
      pred_(static_cast<std::size_t>(std::max(0, num_cores))) {}

bool PrecedenceGraph::Add(CoreId before, CoreId after) {
  if (before < 0 || after < 0 || before >= num_cores() || after >= num_cores()) {
    return false;
  }
  if (before == after) return false;
  auto& succ = succ_[static_cast<std::size_t>(before)];
  if (std::find(succ.begin(), succ.end(), after) != succ.end()) return true;
  succ.push_back(after);
  pred_[static_cast<std::size_t>(after)].push_back(before);
  ++edge_count_;
  return true;
}

const std::vector<CoreId>& PrecedenceGraph::PredecessorsOf(CoreId core) const {
  return pred_.at(static_cast<std::size_t>(core));
}

const std::vector<CoreId>& PrecedenceGraph::SuccessorsOf(CoreId core) const {
  return succ_.at(static_cast<std::size_t>(core));
}

bool PrecedenceGraph::Reaches(CoreId before, CoreId after) const {
  if (before < 0 || after < 0 || before >= num_cores() || after >= num_cores()) {
    return false;
  }
  std::vector<bool> visited(succ_.size(), false);
  std::queue<CoreId> frontier;
  frontier.push(before);
  visited[static_cast<std::size_t>(before)] = true;
  while (!frontier.empty()) {
    const CoreId cur = frontier.front();
    frontier.pop();
    for (CoreId next : succ_[static_cast<std::size_t>(cur)]) {
      if (next == after) return true;
      if (!visited[static_cast<std::size_t>(next)]) {
        visited[static_cast<std::size_t>(next)] = true;
        frontier.push(next);
      }
    }
  }
  return false;
}

std::optional<std::vector<CoreId>> PrecedenceGraph::TopologicalOrder() const {
  std::vector<int> indegree(succ_.size(), 0);
  for (const auto& preds : pred_) {
    (void)preds;
  }
  for (std::size_t i = 0; i < succ_.size(); ++i) {
    indegree[i] = static_cast<int>(pred_[i].size());
  }
  std::queue<CoreId> ready;
  for (std::size_t i = 0; i < indegree.size(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<CoreId>(i));
  }
  std::vector<CoreId> order;
  order.reserve(succ_.size());
  while (!ready.empty()) {
    const CoreId cur = ready.front();
    ready.pop();
    order.push_back(cur);
    for (CoreId next : succ_[static_cast<std::size_t>(cur)]) {
      if (--indegree[static_cast<std::size_t>(next)] == 0) ready.push(next);
    }
  }
  if (order.size() != succ_.size()) return std::nullopt;
  return order;
}

int PrecedenceGraph::LongestChain() const {
  const auto order = TopologicalOrder();
  if (!order) return -1;
  std::vector<int> depth(succ_.size(), 0);
  int best = 0;
  for (CoreId core : *order) {
    for (CoreId next : succ_[static_cast<std::size_t>(core)]) {
      depth[static_cast<std::size_t>(next)] =
          std::max(depth[static_cast<std::size_t>(next)],
                   depth[static_cast<std::size_t>(core)] + 1);
      best = std::max(best, depth[static_cast<std::size_t>(next)]);
    }
  }
  return best;
}

}  // namespace soctest
