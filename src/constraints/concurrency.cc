#include "constraints/concurrency.h"

#include <algorithm>
#include <map>

namespace soctest {

std::uint64_t ConcurrencySet::Key(CoreId a, CoreId b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

bool ConcurrencySet::Add(CoreId a, CoreId b) {
  if (a < 0 || b < 0 || a >= num_cores_ || b >= num_cores_ || a == b) return false;
  pairs_.insert(Key(a, b));
  return true;
}

bool ConcurrencySet::Conflicts(CoreId a, CoreId b) const {
  if (a < 0 || b < 0 || a == b) return false;
  return pairs_.count(Key(a, b)) != 0;
}

std::vector<std::pair<CoreId, CoreId>> ConcurrencySet::Pairs() const {
  std::vector<std::pair<CoreId, CoreId>> out;
  out.reserve(pairs_.size());
  for (std::uint64_t key : pairs_) {
    out.emplace_back(static_cast<CoreId>(key & 0xffffffffULL),
                     static_cast<CoreId>(key >> 32));
  }
  std::sort(out.begin(), out.end());
  return out;
}

ConcurrencySet ConcurrencySet::FromSoc(
    const Soc& soc, const std::vector<std::pair<CoreId, CoreId>>& extra) {
  ConcurrencySet set(soc.num_cores());

  // Hierarchy: every core conflicts with each of its ancestors.
  for (const auto& core : soc.cores()) {
    std::optional<CoreId> up = core.parent;
    while (up) {
      set.Add(core.id, *up);
      up = soc.core(*up).parent;
    }
  }

  // Shared resources (BIST engines etc.).
  std::map<int, std::vector<CoreId>> by_resource;
  for (const auto& core : soc.cores()) {
    for (int r : core.resources) by_resource[r].push_back(core.id);
  }
  for (const auto& [resource, users] : by_resource) {
    (void)resource;
    for (std::size_t i = 0; i < users.size(); ++i) {
      for (std::size_t j = i + 1; j < users.size(); ++j) {
        set.Add(users[i], users[j]);
      }
    }
  }

  for (const auto& [a, b] : extra) set.Add(a, b);
  return set;
}

}  // namespace soctest
