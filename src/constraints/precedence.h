// Precedence constraints among core tests: "i < j" means the test of core i
// must fully complete (all preempted partitions packed) before the test of
// core j may begin. Used for abort-at-first-fail ordering and test-memories-
// first strategies (paper Section 4).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "soc/core_spec.h"

namespace soctest {

class PrecedenceGraph {
 public:
  PrecedenceGraph() = default;
  explicit PrecedenceGraph(int num_cores);

  int num_cores() const { return static_cast<int>(succ_.size()); }

  // Adds "before < after". Duplicate edges are ignored. Returns false if
  // either id is out of range or before == after.
  bool Add(CoreId before, CoreId after);

  // All direct predecessors of `core` (tests that must finish first).
  // Contract: a negative or out-of-range id is misuse and throws
  // std::out_of_range (it never silently answers "no constraints" — see the
  // PowerModel::PowerOf contract for why silent defaults are dangerous here).
  const std::vector<CoreId>& PredecessorsOf(CoreId core) const;
  const std::vector<CoreId>& SuccessorsOf(CoreId core) const;

  std::size_t num_edges() const { return edge_count_; }
  bool empty() const { return edge_count_ == 0; }

  // True iff there is a directed path before -> ... -> after.
  bool Reaches(CoreId before, CoreId after) const;

  // Returns a topological order of all cores, or nullopt if the constraint
  // graph has a cycle (unsatisfiable precedence set).
  std::optional<std::vector<CoreId>> TopologicalOrder() const;

  bool HasCycle() const { return !TopologicalOrder().has_value(); }

  // Length (in edges) of the longest precedence chain; 0 when empty.
  // Requires an acyclic graph.
  int LongestChain() const;

 private:
  std::vector<std::vector<CoreId>> succ_;
  std::vector<std::vector<CoreId>> pred_;
  std::size_t edge_count_ = 0;
};

}  // namespace soctest
