#include "constraints/power.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace soctest {

PowerBudget PowerBudget::Constant(std::int64_t pmax) {
  if (pmax < 0) return PowerBudget();
  return PowerBudget({{0, pmax}});
}

std::optional<PowerBudget> PowerBudget::FromSegments(
    std::vector<Segment> segments, std::string* error) {
  if (segments.empty()) return PowerBudget();
  if (segments.front().start != 0) {
    if (error != nullptr) *error = "first budget segment must start at cycle 0";
    return std::nullopt;
  }
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].pmax <= 0) {
      if (error != nullptr) {
        *error = StrFormat("budget segment %zu: pmax must be positive", i);
      }
      return std::nullopt;
    }
    if (i > 0 && segments[i].start <= segments[i - 1].start) {
      if (error != nullptr) {
        *error = StrFormat(
            "budget segment %zu: starts must be strictly increasing", i);
      }
      return std::nullopt;
    }
  }
  return PowerBudget(std::move(segments));
}

std::int64_t PowerBudget::BudgetAt(Time t) const {
  if (segments_.empty()) return -1;
  // Timelines are short (a handful of throttling windows); a linear scan
  // beats binary search at these sizes and keeps the one-segment case a
  // single compare.
  std::size_t i = 0;
  while (i + 1 < segments_.size() && segments_[i + 1].start <= t) ++i;
  return segments_[i].pmax;
}

std::optional<Time> PowerBudget::NextChangeAfter(Time t) const {
  for (const Segment& s : segments_) {
    if (s.start > t) return s.start;
  }
  return std::nullopt;
}

std::int64_t PowerBudget::MinOver(Time begin, Time end) const {
  if (segments_.empty()) return -1;
  std::int64_t min_cap = BudgetAt(begin);
  for (const Segment& s : segments_) {
    if (s.start > begin && s.start < end) min_cap = std::min(min_cap, s.pmax);
  }
  return min_cap;
}

std::int64_t PowerBudget::MaxBudget() const {
  if (segments_.empty()) return -1;
  std::int64_t max_cap = 0;
  for (const Segment& s : segments_) max_cap = std::max(max_cap, s.pmax);
  return max_cap;
}

std::string FormatBudgetTimeline(const PowerBudget& budget) {
  std::string out;
  for (const PowerBudget::Segment& s : budget.segments()) {
    if (!out.empty()) out += ',';
    out += StrFormat("%lld:%lld", static_cast<long long>(s.start),
                     static_cast<long long>(s.pmax));
  }
  return out;
}

std::optional<PowerBudget> ParseBudgetTimeline(const std::string& text,
                                               std::string* error) {
  std::vector<PowerBudget::Segment> segments;
  for (const std::string& part : Split(text, ',')) {
    const auto fields = Split(part, ':');
    if (fields.size() != 2) {
      if (error != nullptr) {
        *error = StrFormat("budget segment '%s': expected start:pmax",
                           part.c_str());
      }
      return std::nullopt;
    }
    const auto start = ParseInt(fields[0]);
    const auto pmax = ParseInt(fields[1]);
    if (!start || !pmax || *start < 0) {
      if (error != nullptr) {
        *error = StrFormat("budget segment '%s': expected start:pmax",
                           part.c_str());
      }
      return std::nullopt;
    }
    segments.push_back({*start, *pmax});
  }
  return PowerBudget::FromSegments(std::move(segments), error);
}

PowerModel PowerModel::FromSoc(const Soc& soc, double budget_factor) {
  std::vector<std::int64_t> power;
  power.reserve(static_cast<std::size_t>(soc.num_cores()));
  for (const auto& core : soc.cores()) {
    power.push_back(core.power > 0 ? core.power : core.BitsPerPattern());
  }
  std::int64_t peak = 0;
  for (std::int64_t p : power) peak = std::max(peak, p);
  const auto pmax = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(peak) * std::max(1.0, budget_factor)));
  return PowerModel(std::move(power), pmax);
}

std::int64_t PowerModel::MaxCorePower() const {
  std::int64_t peak = 0;
  for (std::int64_t p : core_power_) peak = std::max(peak, p);
  return peak;
}

void PowerModel::DieBadCoreId(CoreId core) const {
  // Unconditional (not assert): the misuse contract must hold in release
  // builds too, where NDEBUG compiles assert away.
  std::fprintf(stderr,
               "PowerModel::PowerOf: core id %d out of range [0, %zu)\n",
               core, core_power_.size());
  std::abort();
}

PowerModel WithBudget(const Soc& soc, const PowerModel& base,
                      PowerBudget budget) {
  std::vector<std::int64_t> power = base.core_power();
  if (power.empty()) {
    power.reserve(static_cast<std::size_t>(soc.num_cores()));
    for (const auto& core : soc.cores()) {
      power.push_back(core.power > 0 ? core.power : core.BitsPerPattern());
    }
  }
  return PowerModel(std::move(power), std::move(budget));
}

}  // namespace soctest
