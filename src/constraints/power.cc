#include "constraints/power.h"

#include <algorithm>
#include <cmath>

namespace soctest {

PowerModel PowerModel::FromSoc(const Soc& soc, double budget_factor) {
  std::vector<std::int64_t> power;
  power.reserve(static_cast<std::size_t>(soc.num_cores()));
  for (const auto& core : soc.cores()) {
    power.push_back(core.power > 0 ? core.power : core.BitsPerPattern());
  }
  std::int64_t peak = 0;
  for (std::int64_t p : power) peak = std::max(peak, p);
  const auto pmax = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(peak) * std::max(1.0, budget_factor)));
  return PowerModel(std::move(power), pmax);
}

std::int64_t PowerModel::MaxCorePower() const {
  std::int64_t peak = 0;
  for (std::int64_t p : core_power_) peak = std::max(peak, p);
  return peak;
}

}  // namespace soctest
