// Concurrency constraints: "i ~/~ j" means the tests of cores i and j must
// not overlap in time. Sources (paper Section 4):
//   * explicit integrator-specified pairs,
//   * design hierarchy (a parent in Intest conflicts with its descendants,
//     whose wrappers must be in Extest mode), and
//   * shared test resources (e.g. a BIST engine driving several cores — the
//     paper's "BIST-scan test conflict").
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "soc/core_spec.h"
#include "soc/soc.h"

namespace soctest {

class ConcurrencySet {
 public:
  ConcurrencySet() = default;
  explicit ConcurrencySet(int num_cores) : num_cores_(num_cores) {}

  int num_cores() const { return num_cores_; }

  // Adds a symmetric exclusion pair. Out-of-range or self pairs are rejected.
  bool Add(CoreId a, CoreId b);

  // Contract: negative ids and self-pairs answer false — they can never have
  // been Add()ed, so "no conflict" is exact, not a masked default (unlike the
  // old PowerModel::PowerOf out-of-range behavior, which invented a value).
  bool Conflicts(CoreId a, CoreId b) const;

  std::size_t num_pairs() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  // All pairs, each reported once with a < b.
  std::vector<std::pair<CoreId, CoreId>> Pairs() const;

  // Derives the full conflict set for an SOC:
  //  * ancestor/descendant pairs from the hierarchy,
  //  * pairs of cores that share at least one resource id,
  //  * plus all `extra` integrator-specified pairs.
  static ConcurrencySet FromSoc(
      const Soc& soc,
      const std::vector<std::pair<CoreId, CoreId>>& extra = {});

 private:
  static std::uint64_t Key(CoreId a, CoreId b);

  int num_cores_ = 0;
  std::unordered_set<std::uint64_t> pairs_;
};

}  // namespace soctest
