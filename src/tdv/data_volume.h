// Tester data volume analysis (paper Section 5).
//
// For a fixed SOC TAM width W, every one of the W tester channels must hold a
// vector as deep as the SOC test length, so the tester memory requirement is
//     D(W) = W * T(W)    [bits]
// (the per-pin memory depth is T(W)). This model exactly reproduces the
// paper's Table 2: e.g. p22810's minimum D = 44 * 167670 = 7 377 480 bits.
// D(W) is non-monotonic in W: between Pareto points of T, the time is flat so
// D grows linearly; at a Pareto point T drops, producing a local minimum.
#pragma once

#include <vector>

#include "core/optimizer.h"
#include "core/problem.h"
#include "util/interval.h"

namespace soctest {

// One point of the width sweep.
struct SweepPoint {
  int tam_width = 0;
  Time test_time = 0;          // T(W), cycles
  std::int64_t data_volume = 0;  // D(W) = W * T(W), bits
};

struct SweepOptions {
  int min_width = 1;
  int max_width = 80;            // paper Fig. 9 sweeps to 80
  OptimizerParams optimizer;     // tam_width is overridden per point
  bool best_over_params = false; // sweep S/delta at every width (slow)
  int threads = 1;               // workers across width points (0 = hardware)
};

// Schedules the SOC at every width in [min_width, max_width] and records
// T and D. Points where scheduling fails (impossible inputs) are skipped.
// The wrapper artifacts are compiled once and shared by every point; with
// threads > 1 the points are evaluated in parallel — one reusable
// ScheduleWorkspace per pool worker (runtime/workspace_pool.h), kept across
// all the widths that worker drains — and the result is identical for every
// thread count (each width owns its output slot, and workspace reuse never
// changes a run's output).
std::vector<SweepPoint> SweepWidths(const TestProblem& problem,
                                    const SweepOptions& options);
std::vector<SweepPoint> SweepWidths(const CompiledProblem& compiled,
                                    const SweepOptions& options);

// Minimum-T and minimum-D points of a sweep (first minimizer on ties,
// matching the paper's "value at which the minimum occurs").
SweepPoint MinTimePoint(const std::vector<SweepPoint>& sweep);
SweepPoint MinVolumePoint(const std::vector<SweepPoint>& sweep);

// Indices of the local minima of D(W) (strictly lower than both neighbors,
// plateau-aware). The paper observes these coincide with Pareto points of T.
std::vector<std::size_t> LocalVolumeMinima(const std::vector<SweepPoint>& sweep);

}  // namespace soctest
