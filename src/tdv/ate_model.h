// Automatic test equipment (ATE) memory model.
//
// The paper's Section 5 motivation: per-pin vector memory on the tester is a
// finite buffer; when an SOC's per-pin vector depth exceeds it, the test must
// pause while the workstation reloads the buffers — a cost that dwarfs the
// pattern application time when incurred often ([3] in the paper). We do not
// have a physical tester, so this module simulates the relevant behaviour:
// given a schedule's per-pin depth D_pin = T(W) and a buffer depth B, it
// derives reload counts and the wall-clock test cost, and evaluates the
// multisite configuration (several devices tested in parallel by one tester).
#pragma once

#include <cstdint>

#include "tdv/data_volume.h"
#include "util/interval.h"

namespace soctest {

struct AteParams {
  int channels = 96;                       // tester channel count
  std::int64_t buffer_depth_bits = 512'000;  // per-channel vector memory
  // Cycles-equivalent cost of one full buffer reload from the workstation
  // (transfer time normalized to test-clock cycles; large by design).
  std::int64_t reload_cost_cycles = 2'000'000;
};

struct AteCost {
  int sites = 0;                    // devices tested in parallel
  std::int64_t reloads_per_pin = 0; // buffer refills needed per channel
  Time per_device_cycles = 0;       // T + reload overhead
  Time batch_cycles = 0;            // for `num_devices` devices
  bool fits_single_buffer = false;  // the paper's "contained to one buffer"
};

// Evaluates one (W, T) operating point on a tester.
AteCost EvaluateAte(const SweepPoint& point, const AteParams& params,
                    int num_devices);

// Finds the sweep point minimizing the batch cost on a given tester. Returns
// the index into `sweep`.
std::size_t BestAtePoint(const std::vector<SweepPoint>& sweep,
                         const AteParams& params, int num_devices);

}  // namespace soctest
