// Effective TAM width selection (paper Section 5 / Table 2).
//
// Normalized cost over a width sweep:
//   C(W) = rho * T(W)/T_min + (1 - rho) * D(W)/D_min,   rho in [0, 1].
// As rho goes 0 -> 1 the C-curve morphs from the D-curve to the T-curve; in
// between it is U-shaped with a single practical minimum, the effective TAM
// width W_E(rho). Choosing W_E trades test time against tester memory depth
// (multisite testing: fewer pins per device = more devices in parallel).
#pragma once

#include <vector>

#include "tdv/data_volume.h"

namespace soctest {

struct CostPoint {
  int tam_width = 0;
  double cost = 0.0;
  Time test_time = 0;
  std::int64_t data_volume = 0;
};

// Evaluates C(W) over the sweep for a given rho (clamped to [0,1]).
std::vector<CostPoint> CostCurve(const std::vector<SweepPoint>& sweep,
                                 double rho);

// The effective width: the sweep point minimizing C (first minimizer wins,
// matching the paper's tabulation).
CostPoint EffectiveWidth(const std::vector<SweepPoint>& sweep, double rho);

// Table-2 row: min C and the widths/values at the effective width for one rho.
struct TradeoffRow {
  double rho = 0.0;
  double min_cost = 0.0;
  int effective_width = 0;
  Time time_at_effective = 0;
  std::int64_t volume_at_effective = 0;
};

TradeoffRow MakeTradeoffRow(const std::vector<SweepPoint>& sweep, double rho);

// Multisite view: with a tester that has `tester_channels` channels, a device
// using W pins allows floor(channels / W) sites. Returns the batch time for
// `num_devices` devices: ceil(devices / sites) * T(W). Useful to justify the
// narrow-TAM trade-off the paper motivates.
Time MultisiteBatchTime(const SweepPoint& point, int tester_channels,
                        int num_devices);

}  // namespace soctest
