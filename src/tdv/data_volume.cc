#include "tdv/data_volume.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "runtime/thread_pool.h"
#include "runtime/workspace_pool.h"

namespace soctest {

std::vector<SweepPoint> SweepWidths(const TestProblem& problem,
                                    const SweepOptions& options) {
  const CompiledProblem compiled(problem, options.optimizer.w_max);
  return SweepWidths(compiled, options);
}

std::vector<SweepPoint> SweepWidths(const CompiledProblem& compiled,
                                    const SweepOptions& options) {
  const int min_width = std::max(1, options.min_width);
  if (options.max_width < min_width) return {};

  // One slot per width: workers never contend, and collecting the slots in
  // index order makes the parallel sweep's output identical to serial.
  const auto n = static_cast<std::size_t>(options.max_width - min_width + 1);
  std::vector<std::optional<SweepPoint>> slots(n);
  // When the width range is narrower than the thread budget, hand the spare
  // parallelism to each point's inner restart grid (its own nested pool) so
  // short sweeps with best_over_params still use the whole machine. The
  // inner search is deterministic at any thread count, so this cannot change
  // the output.
  const int budget = ResolveThreadCount(options.threads);
  const int inner_threads =
      options.best_over_params ? std::max(1, budget / static_cast<int>(n)) : 1;
  ThreadPool pool(std::min(budget, static_cast<int>(n)));
  // One ScheduleWorkspace per worker, reused across every width the worker
  // drains: the state vectors and admission scratch survive from width to
  // width, and only the clipped rectangle sets rebuild when the workspace's
  // cached (problem, width) key changes. Reuse cannot change results — Run
  // reinitializes the workspace per run — so the sweep points stay
  // bit-identical to the historical fresh-workspace-per-width path.
  WorkspacePool workspaces(pool);
  pool.ParallelForWorker(n, [&](std::size_t worker, std::size_t i) {
    OptimizerParams params = options.optimizer;
    params.tam_width = min_width + static_cast<int>(i);
    const OptimizerResult result =
        options.best_over_params
            ? OptimizeBestOverParams(compiled, params, inner_threads)
            : Optimize(compiled, params, workspaces.slot(worker));
    if (!result.ok()) return;
    SweepPoint point;
    point.tam_width = params.tam_width;
    point.test_time = result.makespan;
    point.data_volume =
        static_cast<std::int64_t>(params.tam_width) * result.makespan;
    slots[i] = point;
  });

  std::vector<SweepPoint> out;
  out.reserve(n);
  for (const auto& slot : slots) {
    if (slot) out.push_back(*slot);
  }
  return out;
}

SweepPoint MinTimePoint(const std::vector<SweepPoint>& sweep) {
  assert(!sweep.empty());
  const auto it = std::min_element(
      sweep.begin(), sweep.end(), [](const SweepPoint& a, const SweepPoint& b) {
        return a.test_time < b.test_time;
      });
  return *it;
}

SweepPoint MinVolumePoint(const std::vector<SweepPoint>& sweep) {
  assert(!sweep.empty());
  const auto it = std::min_element(
      sweep.begin(), sweep.end(), [](const SweepPoint& a, const SweepPoint& b) {
        return a.data_volume < b.data_volume;
      });
  return *it;
}

std::vector<std::size_t> LocalVolumeMinima(const std::vector<SweepPoint>& sweep) {
  std::vector<std::size_t> out;
  const std::size_t n = sweep.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Walk left past any plateau, then right past any plateau.
    std::size_t l = i;
    while (l > 0 && sweep[l - 1].data_volume == sweep[i].data_volume) --l;
    std::size_t r = i;
    while (r + 1 < n && sweep[r + 1].data_volume == sweep[i].data_volume) ++r;
    const bool left_higher = (l == 0) || sweep[l - 1].data_volume > sweep[i].data_volume;
    const bool right_higher = (r + 1 == n) || sweep[r + 1].data_volume > sweep[i].data_volume;
    if (left_higher && right_higher && i == l) {
      out.push_back(i);  // report each plateau once, at its left edge
    }
  }
  return out;
}

}  // namespace soctest
