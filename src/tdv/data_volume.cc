#include "tdv/data_volume.h"

#include <algorithm>
#include <cassert>

namespace soctest {

std::vector<SweepPoint> SweepWidths(const TestProblem& problem,
                                    const SweepOptions& options) {
  std::vector<SweepPoint> out;
  OptimizerParams params = options.optimizer;
  for (int w = std::max(1, options.min_width); w <= options.max_width; ++w) {
    params.tam_width = w;
    const OptimizerResult result = options.best_over_params
                                       ? OptimizeBestOverParams(problem, params)
                                       : Optimize(problem, params);
    if (!result.ok()) continue;
    SweepPoint point;
    point.tam_width = w;
    point.test_time = result.makespan;
    point.data_volume = static_cast<std::int64_t>(w) * result.makespan;
    out.push_back(point);
  }
  return out;
}

SweepPoint MinTimePoint(const std::vector<SweepPoint>& sweep) {
  assert(!sweep.empty());
  const auto it = std::min_element(
      sweep.begin(), sweep.end(), [](const SweepPoint& a, const SweepPoint& b) {
        return a.test_time < b.test_time;
      });
  return *it;
}

SweepPoint MinVolumePoint(const std::vector<SweepPoint>& sweep) {
  assert(!sweep.empty());
  const auto it = std::min_element(
      sweep.begin(), sweep.end(), [](const SweepPoint& a, const SweepPoint& b) {
        return a.data_volume < b.data_volume;
      });
  return *it;
}

std::vector<std::size_t> LocalVolumeMinima(const std::vector<SweepPoint>& sweep) {
  std::vector<std::size_t> out;
  const std::size_t n = sweep.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Walk left past any plateau, then right past any plateau.
    std::size_t l = i;
    while (l > 0 && sweep[l - 1].data_volume == sweep[i].data_volume) --l;
    std::size_t r = i;
    while (r + 1 < n && sweep[r + 1].data_volume == sweep[i].data_volume) ++r;
    const bool left_higher = (l == 0) || sweep[l - 1].data_volume > sweep[i].data_volume;
    const bool right_higher = (r + 1 == n) || sweep[r + 1].data_volume > sweep[i].data_volume;
    if (left_higher && right_higher && i == l) {
      out.push_back(i);  // report each plateau once, at its left edge
    }
  }
  return out;
}

}  // namespace soctest
