#include "tdv/ate_model.h"

#include <algorithm>
#include <cassert>

namespace soctest {

AteCost EvaluateAte(const SweepPoint& point, const AteParams& params,
                    int num_devices) {
  assert(point.tam_width > 0 && num_devices > 0 && params.channels > 0);
  AteCost cost;
  cost.sites = std::max(1, params.channels / point.tam_width);

  // Per-pin vector depth equals the SOC test length; each buffer holds
  // buffer_depth_bits vector bits per channel.
  const std::int64_t depth = point.test_time;
  cost.fits_single_buffer = depth <= params.buffer_depth_bits;
  cost.reloads_per_pin =
      std::max<std::int64_t>(0, (depth + params.buffer_depth_bits - 1) /
                                        params.buffer_depth_bits -
                                    1);
  cost.per_device_cycles =
      point.test_time + cost.reloads_per_pin * params.reload_cost_cycles;

  const int waves = (num_devices + cost.sites - 1) / cost.sites;
  cost.batch_cycles = static_cast<Time>(waves) * cost.per_device_cycles;
  return cost;
}

std::size_t BestAtePoint(const std::vector<SweepPoint>& sweep,
                         const AteParams& params, int num_devices) {
  assert(!sweep.empty());
  std::size_t best = 0;
  Time best_cost = -1;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].tam_width > params.channels) continue;
    const AteCost cost = EvaluateAte(sweep[i], params, num_devices);
    if (best_cost < 0 || cost.batch_cycles < best_cost) {
      best_cost = cost.batch_cycles;
      best = i;
    }
  }
  return best;
}

}  // namespace soctest
