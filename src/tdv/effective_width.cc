#include "tdv/effective_width.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace soctest {

std::vector<CostPoint> CostCurve(const std::vector<SweepPoint>& sweep,
                                 double rho) {
  assert(!sweep.empty());
  rho = std::clamp(rho, 0.0, 1.0);
  const auto t_min = static_cast<double>(MinTimePoint(sweep).test_time);
  const auto d_min = static_cast<double>(MinVolumePoint(sweep).data_volume);
  std::vector<CostPoint> out;
  out.reserve(sweep.size());
  for (const auto& p : sweep) {
    CostPoint c;
    c.tam_width = p.tam_width;
    c.test_time = p.test_time;
    c.data_volume = p.data_volume;
    c.cost = rho * static_cast<double>(p.test_time) / t_min +
             (1.0 - rho) * static_cast<double>(p.data_volume) / d_min;
    out.push_back(c);
  }
  return out;
}

CostPoint EffectiveWidth(const std::vector<SweepPoint>& sweep, double rho) {
  const auto curve = CostCurve(sweep, rho);
  const auto it = std::min_element(
      curve.begin(), curve.end(),
      [](const CostPoint& a, const CostPoint& b) { return a.cost < b.cost; });
  return *it;
}

TradeoffRow MakeTradeoffRow(const std::vector<SweepPoint>& sweep, double rho) {
  const CostPoint best = EffectiveWidth(sweep, rho);
  TradeoffRow row;
  row.rho = rho;
  row.min_cost = best.cost;
  row.effective_width = best.tam_width;
  row.time_at_effective = best.test_time;
  row.volume_at_effective = best.data_volume;
  return row;
}

Time MultisiteBatchTime(const SweepPoint& point, int tester_channels,
                        int num_devices) {
  assert(point.tam_width > 0 && tester_channels > 0 && num_devices > 0);
  const int sites = std::max(1, tester_channels / point.tam_width);
  const int waves = (num_devices + sites - 1) / sites;
  return static_cast<Time>(waves) * point.test_time;
}

}  // namespace soctest
