// SeenSet — an open-addressing set of width vectors, the improver's
// candidate memo (core/improver.h).
//
// Keys are 128-bit content hashes of the vector — two independently seeded
// 64-bit FNV-1a digests, the same construction as the per-core artifact
// identity (soc/core_hash.h) and the result-cache key — with the exact
// vector compared behind the hash: a probe only reports "seen" when both
// digests AND the stored vector match, so even a full 128-bit collision can
// cost an extra probe step but never conflate two distinct candidates.
//
// The table is linear-probing over a power-of-two slot array (grown at ~70%
// load), with the vectors themselves stored once in an append-only arena —
// an Insert of a duplicate allocates nothing. Deterministic by construction:
// contents depend only on the sequence of inserted values.
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace soctest {

class SeenSet {
 public:
  SeenSet() { Rehash(kMinSlots); }

  // Inserts `v`; returns true when it was new, false when already present.
  bool Insert(const std::vector<int>& v) {
    if ((values_.size() + 1) * 10 > slots_.size() * 7) {
      Rehash(slots_.size() * 2);
    }
    const Hash128 h = HashOf(v);
    std::size_t pos = static_cast<std::size_t>(h.lo) & (slots_.size() - 1);
    while (slots_[pos].index >= 0) {
      const Slot& slot = slots_[pos];
      if (slot.hi == h.hi && slot.lo == h.lo &&
          values_[static_cast<std::size_t>(slot.index)] == v) {
        return false;  // exact match behind the hash: already seen
      }
      pos = (pos + 1) & (slots_.size() - 1);
    }
    slots_[pos] = Slot{h.hi, h.lo, static_cast<std::int64_t>(values_.size())};
    values_.push_back(v);
    return true;
  }

  bool Contains(const std::vector<int>& v) const {
    const Hash128 h = HashOf(v);
    std::size_t pos = static_cast<std::size_t>(h.lo) & (slots_.size() - 1);
    while (slots_[pos].index >= 0) {
      const Slot& slot = slots_[pos];
      if (slot.hi == h.hi && slot.lo == h.lo &&
          values_[static_cast<std::size_t>(slot.index)] == v) {
        return true;
      }
      pos = (pos + 1) & (slots_.size() - 1);
    }
    return false;
  }

  std::size_t size() const { return values_.size(); }

 private:
  static constexpr std::size_t kMinSlots = 64;  // power of two

  struct Hash128 {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
  };

  struct Slot {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    std::int64_t index = -1;  // into values_; -1 = empty
  };

  static std::uint64_t Fnv1a(const std::vector<int>& v, std::uint64_t basis) {
    std::uint64_t h = basis;
    for (const int value : v) {
      for (int byte = 0; byte < 4; ++byte) {
        h ^= (static_cast<std::uint32_t>(value) >> (8 * byte)) & 0xffu;
        h *= 1099511628211ull;
      }
    }
    return h;
  }

  static Hash128 HashOf(const std::vector<int>& v) {
    // The two FNV offset bases used throughout the caches (soc/core_hash.cc).
    return {Fnv1a(v, 14695981039346656037ull),
            Fnv1a(v, 0x9e3779b97f4a7c15ull)};
  }

  void Rehash(std::size_t slot_count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(slot_count, Slot{});
    for (const Slot& slot : old) {
      if (slot.index < 0) continue;
      std::size_t pos = static_cast<std::size_t>(slot.lo) & (slot_count - 1);
      while (slots_[pos].index >= 0) pos = (pos + 1) & (slot_count - 1);
      slots_[pos] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::vector<int>> values_;
};

}  // namespace soctest
