#include "search/bandit.h"

#include <cassert>
#include <cmath>

namespace soctest {

Ucb1Bandit::Ucb1Bandit(std::size_t arms, double exploration)
    : stats_(arms), exploration_(exploration) {
  assert(arms >= 1);
}

std::size_t Ucb1Bandit::SelectAndPull() {
  std::size_t pick = stats_.size();
  double best = 0.0;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (stats_[i].pulls == 0) {
      pick = i;  // unpulled arms first, ascending index
      break;
    }
    const double n = static_cast<double>(stats_[i].pulls);
    const double value =
        stats_[i].reward / n +
        exploration_ * std::sqrt(std::log(static_cast<double>(total_pulls_)) / n);
    // Strict > keeps the smallest index on ties.
    if (pick == stats_.size() || value > best) {
      pick = i;
      best = value;
    }
  }
  ++stats_[pick].pulls;
  ++total_pulls_;
  return pick;
}

void Ucb1Bandit::Reward(std::size_t arm, double reward) {
  assert(arm < stats_.size());
  assert(stats_[arm].pulls > 0 && "reward without a matching pull");
  stats_[arm].reward += reward;
}

}  // namespace soctest
