// SearchDriver — evaluates a restart grid against a shared CompiledProblem
// on a worker pool and reduces deterministically.
//
// Contract: for a fixed CompiledProblem and grid, the outcome is bit-identical
// for every thread count. Three ingredients make that true:
//   1. the scheduler is deterministic for fixed inputs and never mutates the
//      CompiledProblem (it is immutable and shared read-only);
//   2. every configuration's figure of merit lands in its own grid-indexed
//      slot, so evaluation order cannot matter;
//   3. the reduction is serial and totally ordered: smallest makespan wins,
//      ties break on the smaller grid index (the canonical serial order, see
//      search/grid.h).
// The winner is then re-run once to materialize the full schedule — cheaper
// than retaining one schedule per configuration, and identical by (1).
#pragma once

#include <vector>

#include "core/compiled_problem.h"
#include "core/optimizer.h"
#include "search/grid.h"

namespace soctest {

struct SearchOptions {
  // Worker threads for the grid evaluation. 0 means "use the hardware"
  // (hardware_concurrency), any value < 1 after resolution clamps to 1 —
  // see ResolveThreadCount in runtime/thread_pool.h.
  int threads = 1;

  // When true, SearchOutcome::makespans records every configuration's
  // makespan (-1 for infeasible ones) for diagnostics and tests.
  bool keep_trace = false;

  // Which grid the OptimizerParams convenience overload enumerates (the
  // explicit-grid overload ignores this). kWide appends the extended axes
  // after the canonical 200, so ties still prefer canonical configurations.
  GridExtent extent = GridExtent::kCanonical;

  // Race every configuration against the best makespan any worker has
  // completed so far: each run gets OptimizerParams::makespan_bound =
  // incumbent + 1, so losing configurations abandon once their makespan
  // certificate proves they cannot beat — or tie — the incumbent. The
  // winner is provably unaffected (an aborted run's true makespan is
  // strictly above some completed run's, so it could never have won the
  // (makespan, index) reduction, ties included) and the returned best is
  // bit-identical to the unbounded search at every thread count. What DOES
  // become timing-dependent is the per-config bookkeeping: an aborted
  // slot's figure of merit is its certificate, not its true makespan, and
  // which slots abort depends on worker interleaving — so this flag is
  // rejected together with keep_trace, and `feasible` may count aborted
  // configurations whose unbounded run would have failed late. Ignored by
  // the caller-workspace overload.
  bool bound_with_incumbent = false;
};

struct SearchOutcome {
  // The minimum-makespan result; on total failure, the error result of
  // configuration 0 (grid errors are configuration-independent: they stem
  // from the problem or the TAM width, which the grid does not vary).
  OptimizerResult best;
  int best_config = -1;  // grid index of the winner; -1 when all failed
  int evaluated = 0;     // configurations run
  int feasible = 0;      // configurations that produced a schedule
  std::vector<Time> makespans;  // per-config trace (only when keep_trace)
};

// Evaluates every configuration of `grid` and reduces as described above.
SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const std::vector<RestartConfig>& grid,
                               const SearchOptions& options);

// Serial evaluation reusing a caller-owned workspace across every
// configuration — the batch-serving layer's per-worker path, where the
// request level owns all parallelism. Bit-identical to the pooled overload
// at any thread count (same grid, same reduction; keep_trace off).
SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const std::vector<RestartConfig>& grid,
                               ScheduleWorkspace& ws);

// Convenience: the canonical grid over `base` (BuildRestartGrid).
SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const OptimizerParams& base,
                               const SearchOptions& options);

}  // namespace soctest
