// The restart grid: the flat, canonically ordered work list of scheduler
// configurations that OptimizeBestOverParams sweeps (paper Table 1's "best
// over all parameter values" methodology, extended with the deadline-sizing
// mode and the admission-rank ablation).
//
// The grid order IS the tie-break: when two configurations produce the same
// makespan, the one with the smaller grid index wins (see search/driver.h).
// Keeping the enumeration in one place makes that rule explicit and lets the
// serial and parallel drivers provably agree.
#pragma once

#include <vector>

#include "core/optimizer.h"

namespace soctest {

// One restart of the search: a complete scheduler configuration plus its
// position in the canonical order.
struct RestartConfig {
  int index = 0;
  OptimizerParams params;
};

// Enumerates the canonical grid on top of `base` (tam_width, preemption mode
// etc. are taken from `base`; the swept fields are overwritten):
//
//   rank    in { kTime, kArea }          (admission ordering)
//   sizing  in { per-core, deadline }    (preferred-width mode)
//   S       in [1, 10]                   (percent slack)
//   delta   in [0, 4]                    (Pareto bump window)
//
// in that nesting order — 200 configurations, index 0 first. This is exactly
// the order the historical serial loop used, so "smallest index wins ties"
// reproduces its "first configuration found wins" behavior.
std::vector<RestartConfig> BuildRestartGrid(const OptimizerParams& base);

}  // namespace soctest
