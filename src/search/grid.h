// The restart grid: the flat, canonically ordered work list of scheduler
// configurations that OptimizeBestOverParams sweeps (paper Table 1's "best
// over all parameter values" methodology, extended with the deadline-sizing
// mode and the admission-rank ablation).
//
// The grid order IS the tie-break: when two configurations produce the same
// makespan, the one with the smaller grid index wins (see search/driver.h).
// Keeping the enumeration in one place makes that rule explicit and lets the
// serial and parallel drivers provably agree.
#pragma once

#include <vector>

#include "core/optimizer.h"

namespace soctest {

// One restart of the search: a complete scheduler configuration plus its
// position in the canonical order.
struct RestartConfig {
  int index = 0;
  OptimizerParams params;
};

// How much of the restart space to enumerate.
//
//   kCanonical — the historical 200-configuration grid (below).
//   kWide      — the canonical grid FIRST (indices 0-199 bit-identical, so
//                equal-makespan ties still resolve to a canonical
//                configuration), then the wider axes the ROADMAP calls out,
//                which the parallel driver absorbs for free:
//                  * rank = kWidth (strip-packing order) over the full
//                    sizing x S x delta sub-grid (+100),
//                  * idle-fill slack in {0, 1, 6} (the paper fixes 3) over
//                    rank x sizing x S in {1,3,5,7,9} x delta in {0,1,2}
//                    (+180),
//                  * preemption budget caps in {0, 1, 2} over the same
//                    sub-grid (+180, preemptive base only — the cap tightens
//                    CoreSpec::max_preemptions, never raises it).
enum class GridExtent { kCanonical, kWide };

// Enumerates the grid on top of `base` (tam_width, preemption mode etc. are
// taken from `base`; the swept fields are overwritten):
//
//   rank    in { kTime, kArea }          (admission ordering)
//   sizing  in { per-core, deadline }    (preferred-width mode)
//   S       in [1, 10]                   (percent slack)
//   delta   in [0, 4]                    (Pareto bump window)
//
// in that nesting order — 200 configurations, index 0 first. This is exactly
// the order the historical serial loop used, so "smallest index wins ties"
// reproduces its "first configuration found wins" behavior. kWide appends
// the extended axes documented above after the canonical block.
std::vector<RestartConfig> BuildRestartGrid(
    const OptimizerParams& base, GridExtent extent = GridExtent::kCanonical);

}  // namespace soctest
