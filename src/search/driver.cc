#include "search/driver.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "runtime/thread_pool.h"
#include "runtime/workspace_pool.h"

namespace soctest {
namespace {

// The shared back half of every overload: the serial, totally ordered
// (makespan, grid index) reduction over the per-config figures of merit,
// then one re-run of the winner (or configuration 0's error when all
// failed) to materialize the schedule. Keeping this in one place is what
// lets the pooled and caller-workspace overloads provably agree.
SearchOutcome ReduceAndMaterialize(const CompiledProblem& compiled,
                                   const std::vector<RestartConfig>& grid,
                                   bool keep_trace,
                                   std::vector<Time> makespans,
                                   ScheduleWorkspace& ws) {
  SearchOutcome outcome;
  outcome.evaluated = static_cast<int>(grid.size());

  int best = -1;
  for (std::size_t i = 0; i < makespans.size(); ++i) {
    if (makespans[i] < 0) continue;
    ++outcome.feasible;
    if (best < 0 || makespans[i] < makespans[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  outcome.best_config = best;

  // Materialize the winner (or configuration 0's error when all failed); the
  // scheduler is deterministic, so this reproduces the evaluated run exactly.
  const std::size_t pick = best < 0 ? 0 : static_cast<std::size_t>(best);
  outcome.best = Optimize(compiled, grid[pick].params, ws);

  if (keep_trace) outcome.makespans = std::move(makespans);
  return outcome;
}

}  // namespace

SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const std::vector<RestartConfig>& grid,
                               const SearchOptions& options) {
  if (grid.empty()) {
    SearchOutcome outcome;
    outcome.best.error = "restart search given an empty grid";
    return outcome;
  }
  if (options.bound_with_incumbent && options.keep_trace) {
    SearchOutcome outcome;
    outcome.best.error =
        "keep_trace records true per-config makespans; incumbent bounding "
        "replaces losers' with certificates — pick one";
    return outcome;
  }

  // Figure of merit per configuration, indexed by grid position; -1 marks an
  // infeasible configuration. Slots are disjoint, so workers never contend.
  std::vector<Time> makespans(grid.size(), -1);
  // Best makespan any worker has fully completed (0 = none yet); the
  // running incumbent losing configurations are raced against when
  // bound_with_incumbent is on. Relaxed ordering suffices: the value only
  // prunes work, never decides the reduction.
  std::atomic<Time> incumbent{0};
  // One reusable workspace per worker slot: every restart after a slot's
  // first reuses its buffers and clipped rectangle sets (the grid shares
  // one TAM width), so the inner loop stops re-allocating per restart.
  // The pool outlives the ThreadPool so slot 0 can serve the winner's
  // materialization.
  // Never spawn more workers than there are configurations.
  const int workers = std::min(ResolveThreadCount(options.threads),
                               static_cast<int>(grid.size()));
  WorkspacePool workspaces(workers);
  {
    ThreadPool pool(workers);
    pool.ParallelForWorker(grid.size(), [&](std::size_t w, std::size_t i) {
      OptimizerParams params = grid[i].params;
      if (options.bound_with_incumbent) {
        const Time inc = incumbent.load(std::memory_order_relaxed);
        // +1: an abort then certifies makespan > incumbent, so a
        // configuration TYING the incumbent still completes and keeps its
        // claim to the smallest-index tie-break — the winner, ties
        // included, is exactly the unbounded grid's.
        if (inc > 0) params.makespan_bound = inc + 1;
      }
      const OptimizerResult r = Optimize(compiled, params, workspaces.slot(w));
      if (!r.ok()) return;
      // An aborted run records its certificate: a sound lower bound that is
      // strictly above the incumbent it raced, so it can never be the
      // reduction's minimum.
      makespans[i] = r.makespan;
      if (options.bound_with_incumbent && !r.aborted_by_bound) {
        Time cur = incumbent.load(std::memory_order_relaxed);
        while ((cur == 0 || r.makespan < cur) &&
               !incumbent.compare_exchange_weak(cur, r.makespan,
                                                std::memory_order_relaxed)) {
        }
      }
    });
  }

  return ReduceAndMaterialize(compiled, grid, options.keep_trace,
                              std::move(makespans), workspaces.slot(0));
}

SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const std::vector<RestartConfig>& grid,
                               ScheduleWorkspace& ws) {
  if (grid.empty()) {
    SearchOutcome outcome;
    outcome.best.error = "restart search given an empty grid";
    return outcome;
  }

  std::vector<Time> makespans(grid.size(), -1);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const OptimizerResult r = Optimize(compiled, grid[i].params, ws);
    if (r.ok()) makespans[i] = r.makespan;
  }
  return ReduceAndMaterialize(compiled, grid, /*keep_trace=*/false,
                              std::move(makespans), ws);
}

SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const OptimizerParams& base,
                               const SearchOptions& options) {
  return RunRestartSearch(compiled, BuildRestartGrid(base, options.extent),
                          options);
}

}  // namespace soctest
