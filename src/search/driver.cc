#include "search/driver.h"

#include <algorithm>

#include "search/thread_pool.h"

namespace soctest {

SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const std::vector<RestartConfig>& grid,
                               const SearchOptions& options) {
  SearchOutcome outcome;
  outcome.evaluated = static_cast<int>(grid.size());
  if (grid.empty()) {
    outcome.best.error = "restart search given an empty grid";
    return outcome;
  }

  // Figure of merit per configuration, indexed by grid position; -1 marks an
  // infeasible configuration. Slots are disjoint, so workers never contend.
  std::vector<Time> makespans(grid.size(), -1);
  // One reusable workspace per worker slot: every restart after a slot's
  // first reuses its buffers and clipped rectangle sets (the grid shares
  // one TAM width), so the inner loop stops re-allocating per restart.
  // Slot 0 outlives the pool to serve the winner's materialization below.
  std::vector<ScheduleWorkspace> workspaces;
  {
    // Never spawn more workers than there are configurations.
    const int workers = std::min(ResolveThreadCount(options.threads),
                                 static_cast<int>(grid.size()));
    ThreadPool pool(workers);
    workspaces.resize(static_cast<std::size_t>(pool.size()));
    pool.ParallelForWorker(grid.size(), [&](std::size_t w, std::size_t i) {
      const OptimizerResult r = Optimize(compiled, grid[i].params, workspaces[w]);
      if (r.ok()) makespans[i] = r.makespan;
    });
  }

  // Serial, totally ordered reduction: (makespan, grid index) lexicographic.
  int best = -1;
  for (std::size_t i = 0; i < makespans.size(); ++i) {
    if (makespans[i] < 0) continue;
    ++outcome.feasible;
    if (best < 0 || makespans[i] < makespans[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  outcome.best_config = best;

  // Materialize the winner (or configuration 0's error when all failed); the
  // scheduler is deterministic, so this reproduces the evaluated run exactly.
  const std::size_t pick = best < 0 ? 0 : static_cast<std::size_t>(best);
  outcome.best = Optimize(compiled, grid[pick].params, workspaces[0]);

  if (options.keep_trace) outcome.makespans = std::move(makespans);
  return outcome;
}

SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const OptimizerParams& base,
                               const SearchOptions& options) {
  return RunRestartSearch(compiled, BuildRestartGrid(base, options.extent),
                          options);
}

}  // namespace soctest
