#include "search/driver.h"

#include <algorithm>
#include <utility>

#include "runtime/thread_pool.h"
#include "runtime/workspace_pool.h"

namespace soctest {
namespace {

// The shared back half of every overload: the serial, totally ordered
// (makespan, grid index) reduction over the per-config figures of merit,
// then one re-run of the winner (or configuration 0's error when all
// failed) to materialize the schedule. Keeping this in one place is what
// lets the pooled and caller-workspace overloads provably agree.
SearchOutcome ReduceAndMaterialize(const CompiledProblem& compiled,
                                   const std::vector<RestartConfig>& grid,
                                   bool keep_trace,
                                   std::vector<Time> makespans,
                                   ScheduleWorkspace& ws) {
  SearchOutcome outcome;
  outcome.evaluated = static_cast<int>(grid.size());

  int best = -1;
  for (std::size_t i = 0; i < makespans.size(); ++i) {
    if (makespans[i] < 0) continue;
    ++outcome.feasible;
    if (best < 0 || makespans[i] < makespans[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  outcome.best_config = best;

  // Materialize the winner (or configuration 0's error when all failed); the
  // scheduler is deterministic, so this reproduces the evaluated run exactly.
  const std::size_t pick = best < 0 ? 0 : static_cast<std::size_t>(best);
  outcome.best = Optimize(compiled, grid[pick].params, ws);

  if (keep_trace) outcome.makespans = std::move(makespans);
  return outcome;
}

}  // namespace

SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const std::vector<RestartConfig>& grid,
                               const SearchOptions& options) {
  if (grid.empty()) {
    SearchOutcome outcome;
    outcome.best.error = "restart search given an empty grid";
    return outcome;
  }

  // Figure of merit per configuration, indexed by grid position; -1 marks an
  // infeasible configuration. Slots are disjoint, so workers never contend.
  std::vector<Time> makespans(grid.size(), -1);
  // One reusable workspace per worker slot: every restart after a slot's
  // first reuses its buffers and clipped rectangle sets (the grid shares
  // one TAM width), so the inner loop stops re-allocating per restart.
  // The pool outlives the ThreadPool so slot 0 can serve the winner's
  // materialization.
  // Never spawn more workers than there are configurations.
  const int workers = std::min(ResolveThreadCount(options.threads),
                               static_cast<int>(grid.size()));
  WorkspacePool workspaces(workers);
  {
    ThreadPool pool(workers);
    pool.ParallelForWorker(grid.size(), [&](std::size_t w, std::size_t i) {
      const OptimizerResult r =
          Optimize(compiled, grid[i].params, workspaces.slot(w));
      if (r.ok()) makespans[i] = r.makespan;
    });
  }

  return ReduceAndMaterialize(compiled, grid, options.keep_trace,
                              std::move(makespans), workspaces.slot(0));
}

SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const std::vector<RestartConfig>& grid,
                               ScheduleWorkspace& ws) {
  if (grid.empty()) {
    SearchOutcome outcome;
    outcome.best.error = "restart search given an empty grid";
    return outcome;
  }

  std::vector<Time> makespans(grid.size(), -1);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const OptimizerResult r = Optimize(compiled, grid[i].params, ws);
    if (r.ok()) makespans[i] = r.makespan;
  }
  return ReduceAndMaterialize(compiled, grid, /*keep_trace=*/false,
                              std::move(makespans), ws);
}

SearchOutcome RunRestartSearch(const CompiledProblem& compiled,
                               const OptimizerParams& base,
                               const SearchOptions& options) {
  return RunRestartSearch(compiled, BuildRestartGrid(base, options.extent),
                          options);
}

}  // namespace soctest
