// Deterministic UCB1 multi-armed bandit — the improver's move-kind selector
// (core/improver.h).
//
// Classic UCB1 (Auer, Cesa-Bianchi, Fischer 2002): pull every arm once, then
// pull the arm maximizing mean_reward + exploration * sqrt(ln(total_pulls) /
// arm_pulls). The implementation is split to match the improver's
// RNG-serial/evaluate-parallel contract:
//
//   * SelectAndPull() — called serially while candidates are DRAWN — picks
//     the arm and records the pull immediately, so consecutive draws within
//     one round spread across arms instead of piling onto one (an arm's
//     growing pull count shrinks its exploration bonus even before its
//     rewards arrive).
//   * Reward(arm, r) — called serially at the ROUND BOUNDARY, after the
//     parallel evaluations have been serially reduced — adds the observed
//     reward. Every pull must eventually receive exactly one reward for the
//     means to carry UCB1's semantics.
//
// Nothing here consumes randomness or depends on timing: selection is a pure
// function of the pull/reward history with ties broken toward the smallest
// arm index (and unpulled arms claimed in ascending index order), so a fixed
// reward sequence reproduces a fixed selection sequence — the determinism
// the improver's cross-thread bit-identity tests pin.
#pragma once

#include <cstdint>
#include <vector>

namespace soctest {

// The canonical exploration constant: sqrt(2), the UCB1 paper's choice.
inline constexpr double kUcb1Exploration = 1.4142135623730951;

class Ucb1Bandit {
 public:
  // `arms` >= 1. `exploration` scales the confidence bonus; larger explores
  // longer. Values <= 0 degenerate to pure greedy (still deterministic).
  explicit Ucb1Bandit(std::size_t arms,
                      double exploration = kUcb1Exploration);

  // Picks the next arm and records the pull. Unpulled arms win first, in
  // ascending index order; afterwards the highest UCB value wins, ties to
  // the smallest index.
  std::size_t SelectAndPull();

  // Records the reward for one earlier pull of `arm`.
  void Reward(std::size_t arm, double reward);

  std::size_t arms() const { return stats_.size(); }
  std::int64_t total_pulls() const { return total_pulls_; }
  std::int64_t pulls(std::size_t arm) const { return stats_[arm].pulls; }
  double total_reward(std::size_t arm) const { return stats_[arm].reward; }

 private:
  struct ArmStats {
    std::int64_t pulls = 0;
    double reward = 0.0;
  };

  std::vector<ArmStats> stats_;
  std::int64_t total_pulls_ = 0;
  double exploration_;
};

}  // namespace soctest
