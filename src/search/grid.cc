#include "search/grid.h"

namespace soctest {
namespace {

// Appends rank x sizing x S x delta combinations to `grid`, preserving the
// canonical nesting order (rank outermost, delta innermost) within the block.
void AppendBlock(std::vector<RestartConfig>& grid, OptimizerParams params,
                 std::initializer_list<AdmissionRank> ranks,
                 std::initializer_list<int> s_values,
                 std::initializer_list<int> deltas) {
  for (AdmissionRank rank : ranks) {
    params.rank = rank;
    for (int sizing = 0; sizing < 2; ++sizing) {
      params.deadline_sizing = sizing == 1;
      for (int s : s_values) {
        for (int d : deltas) {
          params.s_percent = s;
          params.delta = d;
          grid.push_back({static_cast<int>(grid.size()), params});
        }
      }
    }
  }
}

}  // namespace

std::vector<RestartConfig> BuildRestartGrid(const OptimizerParams& base,
                                            GridExtent extent) {
  std::vector<RestartConfig> grid;
  grid.reserve(extent == GridExtent::kWide ? 660 : 200);

  // Canonical block: 2 ranks x 2 sizings x S in [1,10] x delta in [0,4].
  AppendBlock(grid, base, {AdmissionRank::kTime, AdmissionRank::kArea},
              {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {0, 1, 2, 3, 4});
  if (extent == GridExtent::kCanonical) return grid;

  // Wide block 1: the strip-packing admission order over the full sub-grid.
  AppendBlock(grid, base, {AdmissionRank::kWidth},
              {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {0, 1, 2, 3, 4});

  // Wide block 2: idle-fill slack around the paper's fixed 3-wire window,
  // on a coarser S/delta sub-grid to keep the extended sweep bounded.
  for (int slack : {0, 1, 6}) {
    OptimizerParams params = base;
    params.idle_fill_slack = slack;
    AppendBlock(grid, params, {AdmissionRank::kTime, AdmissionRank::kArea},
                {1, 3, 5, 7, 9}, {0, 1, 2});
  }

  // Wide block 3 (preemptive base only): cap every core's preemption budget.
  // The cap can only tighten what the CoreSpec declares, so every
  // configuration stays valid under the per-core validator check; budget 0
  // adds the non-preemptive point to a preemptive sweep.
  if (base.allow_preemption) {
    for (int budget : {0, 1, 2}) {
      OptimizerParams params = base;
      params.preemption_budget_override = budget;
      AppendBlock(grid, params, {AdmissionRank::kTime, AdmissionRank::kArea},
                  {1, 3, 5, 7, 9}, {0, 1, 2});
    }
  }
  return grid;
}

}  // namespace soctest
