#include "search/grid.h"

namespace soctest {

std::vector<RestartConfig> BuildRestartGrid(const OptimizerParams& base) {
  std::vector<RestartConfig> grid;
  grid.reserve(2 * 2 * 10 * 5);
  OptimizerParams params = base;
  for (AdmissionRank rank : {AdmissionRank::kTime, AdmissionRank::kArea}) {
    params.rank = rank;
    for (int sizing = 0; sizing < 2; ++sizing) {
      params.deadline_sizing = sizing == 1;
      for (int s = 1; s <= 10; ++s) {
        for (int d = 0; d <= 4; ++d) {
          params.s_percent = s;
          params.delta = d;
          grid.push_back({static_cast<int>(grid.size()), params});
        }
      }
    }
  }
  return grid;
}

}  // namespace soctest
