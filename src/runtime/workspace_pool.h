// WorkspacePool — one ScheduleWorkspace per ThreadPool worker slot.
//
// Every parallel scheduler consumer follows the same pattern: distribute work
// items over a ThreadPool with ParallelForWorker, give each worker slot its
// own reusable ScheduleWorkspace, and write results into per-item slots so
// the serial reduction afterwards is order-independent. The workspace half of
// that pattern used to be re-implemented at each call site (the restart
// driver, the improver); this class names it once so the search layer, the
// width sweeps, and the batch-serving layer all share it.
//
// A pool's slots are never handed to two concurrent drain loops (that is
// ParallelForWorker's contract), so no synchronization is needed here. Reuse
// across calls is safe because TamScheduleOptimizer::Run reinitializes every
// workspace field before use — results are bit-identical to fresh
// workspaces, only the allocations disappear.
#pragma once

#include <cstddef>
#include <vector>

#include "core/optimizer.h"

namespace soctest {

class ThreadPool;

class WorkspacePool {
 public:
  // One workspace per slot; `slots` < 1 clamps to 1 (the serial slot 0).
  explicit WorkspacePool(int slots);

  // Sized to pool.size(): a slot for every worker ParallelForWorker can pass.
  explicit WorkspacePool(const ThreadPool& pool);

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  int size() const { return static_cast<int>(slots_.size()); }

  // The workspace owned by `worker` (the slot index ParallelForWorker hands
  // out). The reference stays valid for the life of the pool.
  ScheduleWorkspace& slot(std::size_t worker) { return slots_[worker]; }

 private:
  std::vector<ScheduleWorkspace> slots_;
};

}  // namespace soctest
