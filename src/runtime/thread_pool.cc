#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace soctest {

int ResolveThreadCount(int requested) {
  // Cap absurd requests (e.g. --threads 100000) below typical process
  // thread limits; the pool is for CPU-bound schedulers, so nothing is
  // gained beyond hardware scale anyway.
  constexpr int kMaxThreads = 1024;
  if (requested > 0) return std::min(requested, kMaxThreads);
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) return std::min(static_cast<int>(hw), kMaxThreads);
  }
  return 1;
}

ThreadPool::ThreadPool(int threads) {
  const int n = ResolveThreadCount(threads);
  if (n <= 1) return;  // serial pool: everything runs inline, no OS threads
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {  // serial pool: run on the caller's thread
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  ParallelForWorker(n, [&fn](std::size_t, std::size_t i) { fn(i); });
}

void ThreadPool::ParallelForWorker(
    std::size_t n,
    const std::function<void(std::size_t worker, std::size_t i)>& fn) {
  if (n == 0) return;
  const std::size_t fanout = std::min<std::size_t>(workers_.size(), n);
  if (fanout <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  // One shared claim counter; each worker drains indices until exhausted.
  // Completion is tracked under a dedicated mutex so the waiter cannot miss
  // the final notification.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;

  for (std::size_t w = 0; w < fanout; ++w) {
    Submit([&, next, w] {
      for (std::size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
        fn(w, i);
      }
      // Notify while holding the lock: the waiter may destroy done_cv the
      // moment it observes completion, so the notify must finish before the
      // waiter can re-acquire the mutex.
      std::lock_guard<std::mutex> lock(done_mutex);
      ++done;
      done_cv.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done == fanout; });
}

}  // namespace soctest
