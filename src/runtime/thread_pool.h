// A small fixed-size worker pool — the shared concurrency primitive of the
// runtime layer. Every parallel consumer in the codebase (the restart search
// driver, the hill-climb improver, the width-sweep evaluators, and the
// multi-SOC batch-serving layer) draws its workers from here, so the
// determinism conventions below are stated once and inherited everywhere.
//
// Design notes:
//  * Tasks must not throw — the schedulers report failure through their
//    result types, never via exceptions.
//  * ParallelFor is the workhorse: it distributes [0, n) over the workers
//    with an atomic work counter and blocks until every index has run. With
//    one worker (or one item) it degenerates to a plain inline loop, so the
//    `threads = 1` path is literally the serial code path — no pool overhead
//    and trivially deterministic. Parallel callers are expected to write
//    results into per-index slots and reduce serially afterwards; that is
//    what makes the search driver's output bit-identical to serial.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace soctest {

// Resolves a user-facing thread-count request (e.g. a --threads flag):
// 0 means "use the hardware", negative values and unknown hardware clamp to
// 1. The result is always >= 1.
int ResolveThreadCount(int requested);

class ThreadPool {
 public:
  // Spawns ResolveThreadCount(threads) workers. A resolved count of 1 is the
  // serial pool: no OS threads are created and Submit/ParallelFor run on the
  // caller's thread.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Parallelism on offer, >= 1 (a serial pool counts the caller's thread).
  int size() const {
    return workers_.empty() ? 1 : static_cast<int>(workers_.size());
  }

  // Enqueues a task for any worker; on a serial pool, runs it inline. The
  // task must not throw.
  void Submit(std::function<void()> task);

  // Runs fn(i) for every i in [0, n), spread across the workers; returns
  // when all n calls have completed. fn must not throw; calls to ParallelFor
  // must not be nested on the same pool.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Like ParallelFor, but hands fn a worker slot in [0, size()) alongside the
  // index. Each slot is claimed by exactly one concurrent drain loop, so
  // callers can give every slot its own scratch (e.g. a ScheduleWorkspace)
  // with no synchronization. The serial pool always passes slot 0.
  //
  // Blocking-join discipline: because indices are claimed one at a time and
  // run to completion, a task may safely block on a result another in-flight
  // task is producing (the batch scheduler's single-flight dedup does) — the
  // producer is guaranteed to be running on another worker. A task must
  // never wait on work that has not yet STARTED (an unclaimed index, or a
  // task behind it in the queue): every worker could block and no one would
  // be left to run the producer.
  void ParallelForWorker(
      std::size_t n,
      const std::function<void(std::size_t worker, std::size_t i)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stopping_ = false;
};

}  // namespace soctest
