#include "runtime/workspace_pool.h"

#include "runtime/thread_pool.h"

namespace soctest {

WorkspacePool::WorkspacePool(int slots)
    : slots_(static_cast<std::size_t>(slots < 1 ? 1 : slots)) {}

WorkspacePool::WorkspacePool(const ThreadPool& pool)
    : WorkspacePool(pool.size()) {}

}  // namespace soctest
